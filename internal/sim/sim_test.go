package sim

import (
	"net/netip"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netbuild"
	"confmask/internal/netgen"
)

// figure2Network reproduces the paper's running example (Fig. 2a): four
// routers where (r1,r3) and (r3,r2) have OSPF cost 1, so traffic h1→h4
// takes the long path (h1,r1,r3,r2,r4,h4) instead of (h1,r1,r2,r4,h4).
func figure2Network(t *testing.T) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.OSPF)
	b.Router("r1").Router("r2").Router("r3").Router("r4")
	b.LinkCost("r1", "r3", 1, 1)
	b.LinkCost("r3", "r2", 1, 1)
	b.Link("r1", "r2")
	b.Link("r2", "r4")
	b.Host("h1", "r1").Host("h2", "r2").Host("h4", "r4")
	cfg, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return cfg
}

func mustParse(t *testing.T, cfg *config.Network) *config.Network {
	t.Helper()
	out, err := config.ParseNetwork(cfg.Render())
	if err != nil {
		t.Fatalf("ParseNetwork: %v", err)
	}
	return out
}

func mustSim(t *testing.T, cfg *config.Network) *Snapshot {
	t.Helper()
	s, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return s
}

func singleDelivered(t *testing.T, s *Snapshot, src, dst string) Path {
	t.Helper()
	ps := s.Trace(src, dst)
	if len(ps) != 1 || ps[0].Status != Delivered {
		t.Fatalf("Trace(%s,%s) = %v, want one delivered path", src, dst, ps)
	}
	return ps[0]
}

func pathEquals(p Path, hops ...string) bool {
	if len(p.Hops) != len(hops) {
		return false
	}
	for i := range hops {
		if p.Hops[i] != hops[i] {
			return false
		}
	}
	return true
}

func TestOSPFPrefersLowCostPath(t *testing.T) {
	cfg := figure2Network(t)
	s := mustSim(t, cfg)
	p := singleDelivered(t, s, "h1", "h4")
	if !pathEquals(p, "h1", "r1", "r3", "r2", "r4", "h4") {
		t.Fatalf("h1→h4 path = %v", p.Hops)
	}
	back := singleDelivered(t, s, "h4", "h1")
	if !pathEquals(back, "h4", "r4", "r2", "r3", "r1", "h1") {
		t.Fatalf("h4→h1 path = %v", back.Hops)
	}
}

func TestTopologyExtraction(t *testing.T) {
	cfg := figure2Network(t)
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := n.Topology()
	if g.NumNodes() != 7 {
		t.Fatalf("nodes = %d, want 7", g.NumNodes())
	}
	if g.NumEdges() != 7 { // 4 router links + 3 host links
		t.Fatalf("edges = %d, want 7", g.NumEdges())
	}
	if !g.HasEdge("r1", "r3") || !g.HasEdge("r4", "h4") {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge("r1", "r4") {
		t.Fatal("phantom edge r1-r4")
	}
}

func TestOSPFECMP(t *testing.T) {
	b := netgen.NewBuilder(netgen.OSPF)
	b.Router("r1").Router("r2").Router("r3").Router("r4")
	b.Link("r1", "r2").Link("r2", "r4").Link("r1", "r3").Link("r3", "r4")
	b.Host("hs", "r1").Host("hd", "r4")
	s := mustSim(t, b.MustBuild())
	ps := s.Trace("hs", "hd")
	if len(ps) != 2 {
		t.Fatalf("expected 2 ECMP paths, got %v", ps)
	}
	for _, p := range ps {
		if p.Status != Delivered || len(p.Hops) != 5 {
			t.Fatalf("bad ECMP path %v", p)
		}
	}
}

// TestOSPFFakeLinkMatchedCost reproduces the strawman step of §3.2: a fake
// link with cost equal to the original shortest path cost creates a second
// (equal-cost) path, and a distribute-list filter on the fake interface
// restores the original single path — the SFE "rejected" branch.
func TestOSPFFakeLinkMatchedCost(t *testing.T) {
	cfg := figure2Network(t)
	pool := netbuild.PoolFor(cfg)
	// Original h1→h4 router path r1→r3→r2→r4 costs 1+1+10 = 12.
	if _, err := netbuild.AddP2PLink(cfg, pool, "r1", "r4", netbuild.LinkOpts{CostA: 12, CostB: 12, Injected: true}); err != nil {
		t.Fatal(err)
	}
	s := mustSim(t, cfg)
	ps := s.Trace("h1", "h4")
	if len(ps) != 2 {
		t.Fatalf("expected 2 equal-cost paths after fake link, got %v", ps)
	}

	// Filter the fake next hop on r1 for h4's prefix.
	r1 := cfg.Device("r1")
	var fakeIface string
	for _, i := range r1.Interfaces {
		if i.Injected {
			fakeIface = i.Name
		}
	}
	if fakeIface == "" {
		t.Fatal("fake interface not found")
	}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h4pfx := n.HostPrefix["h4"]
	pl := r1.EnsurePrefixList("CMFILTER")
	pl.Deny(h4pfx)
	r1.OSPF.InFilters[fakeIface] = "CMFILTER"

	s2 := mustSim(t, cfg)
	p := singleDelivered(t, s2, "h1", "h4")
	if !pathEquals(p, "h1", "r1", "r3", "r2", "r4", "h4") {
		t.Fatalf("filtered path = %v, want original", p.Hops)
	}
}

func TestRIPHopCount(t *testing.T) {
	b := netgen.NewBuilder(netgen.RIP)
	b.Router("r1").Router("r2").Router("r3")
	b.Link("r1", "r2").Link("r2", "r3").Link("r1", "r3")
	b.Host("h1", "r1").Host("h3", "r3")
	s := mustSim(t, b.MustBuild())
	p := singleDelivered(t, s, "h1", "h3")
	if !pathEquals(p, "h1", "r1", "r3", "h3") {
		t.Fatalf("RIP path = %v, want direct", p.Hops)
	}
}

func TestRIPFilterDivertsRoute(t *testing.T) {
	b := netgen.NewBuilder(netgen.RIP)
	b.Router("r1").Router("r2").Router("r3")
	b.Link("r1", "r2").Link("r2", "r3").Link("r1", "r3")
	b.Host("h1", "r1").Host("h3", "r3")
	cfg := b.MustBuild()
	// Filter h3's prefix on r1's interface toward r3 → r1 must go via r2.
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h3pfx := n.HostPrefix["h3"]
	l := n.LinkBetween("r1", "r3")
	local, _ := l.Local("r1")
	r1 := cfg.Device("r1")
	r1.EnsurePrefixList("F").Deny(h3pfx)
	r1.RIP.InFilters[local.Iface] = "F"
	s := mustSim(t, cfg)
	p := singleDelivered(t, s, "h1", "h3")
	if !pathEquals(p, "h1", "r1", "r2", "r3", "h3") {
		t.Fatalf("filtered RIP path = %v", p.Hops)
	}
}

// bgpChain builds AS1(r1) — AS2(r2a—r2b) — AS3(r3) with hosts at both ends.
func bgpChain(t *testing.T) *config.Network {
	t.Helper()
	b := netgen.NewBuilder(netgen.BGPOSPF)
	b.RouterAS("r1", 65001)
	b.RouterAS("r2a", 65002).RouterAS("r2b", 65002)
	b.RouterAS("r3", 65003)
	b.Link("r1", "r2a")  // eBGP
	b.Link("r2a", "r2b") // intra-AS OSPF
	b.Link("r2b", "r3")  // eBGP
	b.Host("h1", "r1").Host("h3", "r3")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestBGPChainForwarding(t *testing.T) {
	s := mustSim(t, bgpChain(t))
	p := singleDelivered(t, s, "h1", "h3")
	if !pathEquals(p, "h1", "r1", "r2a", "r2b", "r3", "h3") {
		t.Fatalf("BGP path = %v", p.Hops)
	}
	back := singleDelivered(t, s, "h3", "h1")
	if !pathEquals(back, "h3", "r3", "r2b", "r2a", "r1", "h1") {
		t.Fatalf("reverse BGP path = %v", back.Hops)
	}
}

func TestBGPPrefersShorterASPath(t *testing.T) {
	cfg := bgpChain(t)
	// Add a direct AS1–AS3 link: AS path length 1 beats 2 via AS2.
	pool := netbuild.PoolFor(cfg)
	if _, err := netbuild.AddP2PLink(cfg, pool, "r1", "r3", netbuild.LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	s := mustSim(t, cfg)
	p := singleDelivered(t, s, "h1", "h3")
	if !pathEquals(p, "h1", "r1", "r3", "h3") {
		t.Fatalf("path = %v, want direct", p.Hops)
	}
}

func TestBGPNeighborFilterRestoresPath(t *testing.T) {
	cfg := bgpChain(t)
	pool := netbuild.PoolFor(cfg)
	if _, err := netbuild.AddP2PLink(cfg, pool, "r1", "r3", netbuild.LinkOpts{}); err != nil {
		t.Fatal(err)
	}
	n, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h3pfx := n.HostPrefix["h3"]
	h1pfx := n.HostPrefix["h1"]
	// Deny h3's prefix on r1's session toward r3 and h1's prefix on r3's
	// session toward r1: both directions fall back to the AS2 transit.
	l := n.LinkBetween("r1", "r3")
	r1 := cfg.Device("r1")
	r3 := cfg.Device("r3")
	r1.EnsurePrefixList("F1").Deny(h3pfx)
	r3.EnsurePrefixList("F3").Deny(h1pfx)
	for _, nb := range r1.BGP.Neighbors {
		if nb.Addr == l.B.Addr || nb.Addr == l.A.Addr {
			nb.DistributeListIn = "F1"
		}
	}
	for _, nb := range r3.BGP.Neighbors {
		if nb.Addr == l.A.Addr || nb.Addr == l.B.Addr {
			nb.DistributeListIn = "F3"
		}
	}
	s := mustSim(t, cfg)
	p := singleDelivered(t, s, "h1", "h3")
	if !pathEquals(p, "h1", "r1", "r2a", "r2b", "r3", "h3") {
		t.Fatalf("filtered path = %v, want transit via AS2", p.Hops)
	}
	back := singleDelivered(t, s, "h3", "h1")
	if !pathEquals(back, "h3", "r3", "r2b", "r2a", "r1", "h1") {
		t.Fatalf("filtered reverse path = %v", back.Hops)
	}
}

func TestIntraASUsesOSPF(t *testing.T) {
	b := netgen.NewBuilder(netgen.BGPOSPF)
	b.RouterAS("ra", 65001).RouterAS("rb", 65001)
	b.Link("ra", "rb")
	b.Host("ha", "ra").Host("hb", "rb")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := mustSim(t, cfg)
	p := singleDelivered(t, s, "ha", "hb")
	if !pathEquals(p, "ha", "ra", "rb", "hb") {
		t.Fatalf("intra-AS path = %v", p.Hops)
	}
	// The route installed for hb's prefix on ra must come from OSPF, not
	// iBGP (administrative distance 110 < 200).
	n, _ := Build(cfg)
	rt := s.FIB("ra")[n.HostPrefix["hb"]]
	if rt == nil || rt.Source != SrcOSPF {
		t.Fatalf("route source = %v, want ospf", rt)
	}
}

func TestStaticRouteLoopDetected(t *testing.T) {
	b := netgen.NewBuilder(netgen.OSPF)
	b.Router("r1").Router("r2").Router("r3")
	b.Link("r1", "r2").Link("r2", "r3")
	b.Host("hs", "r1").Host("hd", "r3")
	cfg := b.MustBuild()
	// Poison with statics: r1 sends hd's prefix to r2, r2 back to r1.
	n, _ := Build(cfg)
	hd := n.HostPrefix["hd"]
	l12 := n.LinkBetween("r1", "r2")
	cfg.Device("r1").Statics = append(cfg.Device("r1").Statics,
		config.StaticRoute{Prefix: hd, NextHop: l12.B.Addr})
	cfg.Device("r2").Statics = append(cfg.Device("r2").Statics,
		config.StaticRoute{Prefix: hd, NextHop: l12.A.Addr})
	s := mustSim(t, cfg)
	ps := s.Trace("hs", "hd")
	if len(ps) != 1 || ps[0].Status != Looped {
		t.Fatalf("expected loop, got %v", ps)
	}
}

func TestBlackHoleDetected(t *testing.T) {
	cfg := figure2Network(t)
	// Deny h4's prefix on every r1 interface: r1 loses the route entirely.
	n, _ := Build(cfg)
	h4 := n.HostPrefix["h4"]
	r1 := cfg.Device("r1")
	r1.EnsurePrefixList("ALL").Deny(h4)
	for _, l := range n.LinksOf("r1") {
		other, _ := l.Other("r1")
		if cfg.Device(other.Device).Kind != config.RouterKind {
			continue
		}
		local, _ := l.Local("r1")
		r1.OSPF.InFilters[local.Iface] = "ALL"
	}
	s := mustSim(t, cfg)
	ps := s.Trace("h1", "h4")
	if len(ps) != 1 || ps[0].Status != BlackHoled {
		t.Fatalf("expected black hole, got %v", ps)
	}
}

func TestFIBLookupLongestPrefixMatch(t *testing.T) {
	f := make(FIB)
	wide := netip.MustParsePrefix("10.0.0.0/8")
	narrow := netip.MustParsePrefix("10.1.0.0/24")
	f[wide] = &Route{Prefix: wide, NextHops: []NextHop{{Device: "a"}}}
	f[narrow] = &Route{Prefix: narrow, NextHops: []NextHop{{Device: "b"}}}
	got := f.Lookup(netip.MustParseAddr("10.1.0.7"))
	if got == nil || got.Prefix != narrow {
		t.Fatalf("LPM picked %v", got)
	}
	got = f.Lookup(netip.MustParseAddr("10.2.0.7"))
	if got == nil || got.Prefix != wide {
		t.Fatalf("fallback picked %v", got)
	}
	if f.Lookup(netip.MustParseAddr("192.168.0.1")) != nil {
		t.Fatal("expected miss")
	}
}

func TestDataPlaneExtractionAndDiff(t *testing.T) {
	cfg := figure2Network(t)
	s := mustSim(t, cfg)
	dp := s.ExtractDataPlane()
	if len(dp.Pairs) != 6 { // 3 hosts × 2
		t.Fatalf("pairs = %d", len(dp.Pairs))
	}
	if !dp.Reachable("h1", "h4") {
		t.Fatal("h1→h4 should be reachable")
	}
	hosts := cfg.Hosts()
	if !EqualOver(dp, dp, hosts) {
		t.Fatal("DP must equal itself")
	}
	if got := ExactlyKeptFraction(dp, dp, hosts); got != 1 {
		t.Fatalf("kept fraction = %v", got)
	}

	// Change routing: drop the cost advantage by filtering, then diff.
	cfg2 := cfg.Clone()
	n, _ := Build(cfg2)
	h4 := n.HostPrefix["h4"]
	r1 := cfg2.Device("r1")
	l13 := n.LinkBetween("r1", "r3")
	local, _ := l13.Local("r1")
	r1.EnsurePrefixList("F").Deny(h4)
	r1.OSPF.InFilters[local.Iface] = "F"
	s2 := mustSim(t, cfg2)
	dp2 := s2.ExtractDataPlane()
	diff := DiffPairs(dp, dp2, hosts)
	if len(diff) != 1 || diff[0] != (Pair{Src: "h1", Dst: "h4"}) {
		t.Fatalf("diff = %v", diff)
	}
	frac := ExactlyKeptFraction(dp, dp2, hosts)
	if frac <= 0.8 || frac >= 1 {
		t.Fatalf("kept fraction = %v", frac)
	}
}

func TestSnapshotNextHopRouters(t *testing.T) {
	cfg := figure2Network(t)
	s := mustSim(t, cfg)
	n := s.Net
	got := s.NextHopRouters("r1", n.HostPrefix["h4"])
	if len(got) != 1 || got[0] != "r3" {
		t.Fatalf("NextHopRouters = %v, want [r3]", got)
	}
	if s.NextHopRouters("missing", n.HostPrefix["h4"]) != nil {
		t.Fatal("unknown router should return nil")
	}
}

func TestRoundTripThroughTextPreservesDataPlane(t *testing.T) {
	cfg := bgpChain(t)
	s1 := mustSim(t, cfg)
	texts := cfg.Render()
	cfg2, err := config.ParseNetwork(texts)
	if err != nil {
		t.Fatalf("ParseNetwork: %v", err)
	}
	s2 := mustSim(t, cfg2)
	hosts := cfg.Hosts()
	if !EqualOver(s1.ExtractDataPlane(), s2.ExtractDataPlane(), hosts) {
		t.Fatal("data plane changed across render/parse round trip")
	}
}

func TestBuildErrors(t *testing.T) {
	// A host with no addressed interface.
	cfg := config.NewNetwork()
	cfg.Add(&config.Device{Hostname: "h", Kind: config.HostKind})
	if _, err := Build(cfg); err == nil {
		t.Fatal("expected error for unaddressed host")
	}
	// A host with no attached router.
	cfg2 := config.NewNetwork()
	cfg2.Add(&config.Device{
		Hostname: "h", Kind: config.HostKind,
		Interfaces: []*config.Interface{{Name: "eth0", Addr: netip.MustParsePrefix("10.0.0.2/24")}},
	})
	if _, err := Build(cfg2); err == nil {
		t.Fatal("expected error for orphan host")
	}
}

func TestPathAccessors(t *testing.T) {
	p := Path{Hops: []string{"h1", "r1", "r2", "h2"}, Status: Delivered}
	if p.Ingress() != "r1" || p.Egress() != "r2" {
		t.Fatalf("ingress/egress = %q/%q", p.Ingress(), p.Egress())
	}
	bh := Path{Hops: []string{"h1", "r1"}, Status: BlackHoled}
	if bh.Egress() != "r1" {
		t.Fatalf("blackhole egress = %q", bh.Egress())
	}
}
