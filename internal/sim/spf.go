package sim

import (
	"container/heap"
	"sort"
)

// arc is a directed weighted edge of the SPF graph. The cost is that of the
// outgoing interface on the source router, matching OSPF semantics where
// each direction of a link may carry a different cost.
type arc struct {
	to   string
	cost int
	link *Link
}

// wgraph is the weighted directed graph SPF runs on.
type wgraph struct {
	arcs map[string][]arc
}

func newWGraph() *wgraph {
	return &wgraph{arcs: make(map[string][]arc)}
}

func (g *wgraph) add(from, to string, cost int, link *Link) {
	g.arcs[from] = append(g.arcs[from], arc{to: to, cost: cost, link: link})
}

// pqItem is a priority-queue element for Dijkstra.
type pqItem struct {
	node string
	dist int
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// dijkstra returns shortest-path distances from src to every reachable
// node. Unreachable nodes are absent from the result.
func (g *wgraph) dijkstra(src string) map[string]int {
	dist := map[string]int{src: 0}
	done := make(map[string]bool)
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, a := range g.arcs[it.node] {
			nd := it.dist + a.cost
			if cur, ok := dist[a.to]; !ok || nd < cur {
				dist[a.to] = nd
				heap.Push(q, pqItem{node: a.to, dist: nd})
			}
		}
	}
	return dist
}

// allPairs runs Dijkstra from every node that has outgoing arcs plus the
// provided extra sources, returning dist[src][dst]. The per-source runs
// are independent, so they fan out across the worker pool; each writes its
// own result slot, keeping the output identical to a sequential run.
func (g *wgraph) allPairs(extra []string, workers int) map[string]map[string]int {
	seen := make(map[string]bool, len(g.arcs)+len(extra))
	srcs := make([]string, 0, len(g.arcs)+len(extra))
	for n := range g.arcs {
		seen[n] = true
		srcs = append(srcs, n)
	}
	for _, n := range extra {
		if !seen[n] {
			seen[n] = true
			srcs = append(srcs, n)
		}
	}
	sort.Strings(srcs)
	dists := make([]map[string]int, len(srcs))
	forEachIndex(workers, len(srcs), func(i int) {
		dists[i] = g.dijkstra(srcs[i])
	})
	out := make(map[string]map[string]int, len(srcs))
	for i, n := range srcs {
		out[n] = dists[i]
	}
	return out
}
