package sim

import (
	"math"
	"sort"
	"sync"
)

// The SPF core works over interned integer node IDs rather than router-name
// maps. Node names are interned once per graph into a dense int32 ID space,
// the adjacency lives in CSR form (one offset slice plus flat arc arrays),
// and each Dijkstra run fills a dense []int32 distance row driven by a
// typed binary min-heap — no map lookups, no interface boxing, no
// container/heap. All-pairs state is a DistMatrix whose rows are computed
// on demand per destination (and kept, since SPF distances are
// filter-independent for the Net's lifetime), so a simulation only ever
// pays for the rows it touches and transient per-prefix distance rows can
// be streamed through a pool instead of being materialized for every
// prefix at once.

// interner maps router names to dense int32 IDs and back. IDs are assigned
// in sorted-name order, so the mapping is deterministic for a given node
// set regardless of insertion order.
type interner struct {
	names []string
	ids   map[string]int32
}

// internNames builds an interner over the given names (deduplicated;
// input order irrelevant).
func internNames(names []string) *interner {
	sorted := append(make([]string, 0, len(names)), names...)
	sort.Strings(sorted)
	t := &interner{names: sorted[:0], ids: make(map[string]int32, len(sorted))}
	for _, name := range sorted {
		if _, ok := t.ids[name]; ok {
			continue
		}
		t.ids[name] = int32(len(t.names))
		t.names = append(t.names, name)
	}
	return t
}

func (t *interner) id(name string) (int32, bool) {
	i, ok := t.ids[name]
	return i, ok
}

func (t *interner) size() int { return len(t.names) }

// csrArc is one directed weighted edge in CSR storage. The cost is that of
// the outgoing interface on the source router, matching OSPF semantics
// where each direction of a link may carry a different cost.
type csrArc struct {
	to   int32
	cost int32
	link *Link
}

// csrEdge is the builder-side edge representation fed to buildCSR.
type csrEdge struct {
	from, to int32
	cost     int32
	link     *Link
}

// csrGraph is a weighted directed graph in compressed-sparse-row form:
// arcs[off[v]:off[v+1]] are v's outgoing arcs, preserving the insertion
// order of edges with the same source.
type csrGraph struct {
	t    *interner
	off  []int32
	arcs []csrArc
}

// buildCSR assembles the CSR adjacency from an edge list via counting
// sort, keeping same-source edges in input order.
func buildCSR(t *interner, edges []csrEdge) *csrGraph {
	n := t.size()
	g := &csrGraph{t: t, off: make([]int32, n+1), arcs: make([]csrArc, len(edges))}
	for _, e := range edges {
		g.off[e.from+1]++
	}
	for v := 0; v < n; v++ {
		g.off[v+1] += g.off[v]
	}
	next := append(make([]int32, 0, n), g.off[:n]...)
	for _, e := range edges {
		g.arcs[next[e.from]] = csrArc{to: e.to, cost: e.cost, link: e.link}
		next[e.from]++
	}
	return g
}

// reverse returns the transposed graph (every arc u→v becomes v→u with the
// same cost). Dijkstra over the reverse graph from node d yields the
// distances *into* d from every source — the row orientation every
// consumer of all-pairs state reads.
func (g *csrGraph) reverse() *csrGraph {
	edges := make([]csrEdge, 0, len(g.arcs))
	for v := int32(0); v < int32(g.t.size()); v++ {
		for _, a := range g.arcs[g.off[v]:g.off[v+1]] {
			edges = append(edges, csrEdge{from: a.to, to: v, cost: a.cost, link: a.link})
		}
	}
	return buildCSR(g.t, edges)
}

// outArcs returns v's outgoing arcs.
func (g *csrGraph) outArcs(v int32) []csrArc { return g.arcs[g.off[v]:g.off[v+1]] }

// satAdd32 adds two non-negative costs, saturating at MaxInt32 instead of
// wrapping. Real OSPF costs are ≤ 65535 so saturation is unreachable in
// practice; it only guards against absurd hand-written configs.
func satAdd32(a, b int32) int32 {
	s := a + b
	if s < a {
		return math.MaxInt32
	}
	return s
}

// clampCost32 narrows a config-sourced cost to int32, clamping values
// outside the representable range.
func clampCost32(c int) int32 {
	if c > math.MaxInt32 {
		return math.MaxInt32
	}
	if c < 0 {
		return 0
	}
	return int32(c)
}

// spfHeap is a typed binary min-heap of (dist, node) pairs in parallel
// int32 slices — no interface boxing, no container/heap. Entries are never
// updated in place; decrease-key pushes a duplicate and the pop loop skips
// stale entries via the caller's done set (lazy deletion). EIGRP's
// composite metric runs distance-vector rounds (no priority queue), so
// Dijkstra is the heap's only client.
type spfHeap struct {
	dist []int32
	node []int32
}

func (h *spfHeap) reset() {
	h.dist = h.dist[:0]
	h.node = h.node[:0]
}

func (h *spfHeap) empty() bool { return len(h.dist) == 0 }

func (h *spfHeap) push(d, n int32) {
	h.dist = append(h.dist, d)
	h.node = append(h.node, n)
	i := len(h.dist) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.dist[p] <= h.dist[i] {
			break
		}
		h.dist[p], h.dist[i] = h.dist[i], h.dist[p]
		h.node[p], h.node[i] = h.node[i], h.node[p]
		i = p
	}
}

func (h *spfHeap) pop() (int32, int32) {
	d, n := h.dist[0], h.node[0]
	last := len(h.dist) - 1
	h.dist[0], h.node[0] = h.dist[last], h.node[last]
	h.dist, h.node = h.dist[:last], h.node[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && h.dist[l] < h.dist[min] {
			min = l
		}
		if r < last && h.dist[r] < h.dist[min] {
			min = r
		}
		if min == i {
			break
		}
		h.dist[min], h.dist[i] = h.dist[i], h.dist[min]
		h.node[min], h.node[i] = h.node[i], h.node[min]
		i = min
	}
	return d, n
}

// spfScratch is the reusable per-run Dijkstra state: the heap and the
// settled set. Pooled so concurrent row computations allocate nothing
// after warm-up.
type spfScratch struct {
	heap spfHeap
	done []bool
}

var spfScratchPool = sync.Pool{New: func() any { return new(spfScratch) }}

func getScratch(n int) *spfScratch {
	sc := spfScratchPool.Get().(*spfScratch)
	sc.heap.reset()
	if cap(sc.done) < n {
		sc.done = make([]bool, n)
	} else {
		sc.done = sc.done[:n]
		for i := range sc.done {
			sc.done[i] = false
		}
	}
	return sc
}

func putScratch(sc *spfScratch) { spfScratchPool.Put(sc) }

// dijkstraInto fills row (length g.t.size()) with shortest-path distances
// from src; unreachable nodes get -1.
func (g *csrGraph) dijkstraInto(src int32, row []int32) {
	for i := range row {
		row[i] = -1
	}
	sc := getScratch(len(row))
	row[src] = 0
	sc.heap.push(0, src)
	for !sc.heap.empty() {
		d, v := sc.heap.pop()
		if sc.done[v] {
			continue
		}
		sc.done[v] = true
		for _, a := range g.outArcs(v) {
			nd := satAdd32(d, a.cost)
			if cur := row[a.to]; cur < 0 || nd < cur {
				row[a.to] = nd
				sc.heap.push(nd, a.to)
			}
		}
	}
	putScratch(sc)
}

// DistMatrix is the all-pairs SPF result over one OSPF domain's routers,
// stored as dense int32 rows indexed by DESTINATION: row d holds, for
// every source id s, the distance s→d (-1 when unreachable), computed by
// one Dijkstra over the reversed cost graph. Every consumer — per-prefix
// distance streaming, BGP recursive next-hop resolution, fake-link cost
// derivation, the SPT attack — reads "distance into X from many sources",
// so the destination-major layout turns those scans into sequential row
// walks.
//
// Rows are computed on demand on first touch and kept (SPF distances are
// filter-independent, so they stay valid for the Net's lifetime): a
// simulation pays only for the destinations it actually resolves, and
// never materializes the old map[string]map[string]int all-pairs result.
// Reads of a computed row are lock-free; computation is serialized.
type DistMatrix struct {
	t   *interner
	rev *csrGraph
	mu  sync.Mutex // serializes row computation; rows load lock-free
	row []rowSlot
}

type rowSlot struct {
	p *[]int32
}

func newDistMatrix(rev *csrGraph) *DistMatrix {
	return &DistMatrix{t: rev.t, rev: rev, row: make([]rowSlot, rev.t.size())}
}

// rowTo returns the dense distance row into destination id d, computing it
// on first use.
func (m *DistMatrix) rowTo(d int32) []int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.row[d].p; p != nil {
		return *p
	}
	r := make([]int32, m.t.size())
	m.rev.dijkstraInto(d, r)
	m.row[d].p = &r
	return r
}

// computeAll materializes every row, fanning the per-destination runs out
// across the worker pool; each run writes its own slot, so the result is
// identical to on-demand computation.
func (m *DistMatrix) computeAll(workers int) {
	n := m.t.size()
	rows := make([][]int32, n)
	forEachIndex(workers, n, func(i int) {
		r := make([]int32, n)
		m.rev.dijkstraInto(int32(i), r)
		rows[i] = r
	})
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range rows {
		if m.row[i].p == nil {
			m.row[i].p = &rows[i]
		}
	}
}

// Dist returns the SPF distance from router a to router b, with ok=false
// when either router is outside the OSPF domain or b is unreachable from
// a. Safe on a nil receiver (networks with no OSPF speakers).
func (m *DistMatrix) Dist(a, b string) (int, bool) {
	if m == nil {
		return 0, false
	}
	ai, oka := m.t.id(a)
	bi, okb := m.t.id(b)
	if !oka || !okb {
		return 0, false
	}
	d := m.rowTo(bi)[ai]
	if d < 0 {
		return 0, false
	}
	return int(d), true
}

// Routers returns the interned router set in id order (sorted names).
func (m *DistMatrix) Routers() []string {
	if m == nil {
		return nil
	}
	return m.t.names
}
