package sim

import (
	"runtime"
	"testing"

	"confmask/internal/config"
	"confmask/internal/netgen"
)

// BenchmarkSPFAllPairs measures the interned all-pairs SPF core: one
// reverse-graph Dijkstra per destination filling a dense []int32 row,
// driven by the typed index heap (seq = one worker, par = GOMAXPROCS).
// -benchmem makes the allocation profile visible: after pool warm-up each
// row costs exactly its own []int32.
func BenchmarkSPFAllPairs(b *testing.B) {
	fatTree, err := netgen.FatTree08()
	if err != nil {
		b.Fatal(err)
	}
	fatTree16, err := netgen.FatTree16()
	if err != nil {
		b.Fatal(err)
	}
	nets := []struct {
		name string
		cfg  *config.Network
	}{
		{"FatTree08", fatTree},
		{"FatTree16", fatTree16},
	}
	for _, nc := range nets {
		n, err := Build(nc.cfg)
		if err != nil {
			b.Fatal(err)
		}
		oc := n.coreFor(1).ospf
		if oc.t == nil {
			b.Fatal("no OSPF speakers")
		}
		run := func(workers int) func(*testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m := newDistMatrix(oc.fwd.reverse())
					m.computeAll(workers)
				}
			}
		}
		b.Run(nc.name+"/seq", run(1))
		b.Run(nc.name+"/par", run(runtime.GOMAXPROCS(0)))
	}
}
