package sim

import (
	"net/netip"
	"sort"
	"strings"
)

// PathStatus classifies the outcome of a forwarding walk.
type PathStatus int

const (
	// Delivered means the packet reached the destination host.
	Delivered PathStatus = iota
	// Looped means the walk revisited a device (a forwarding loop).
	Looped
	// BlackHoled means a device had no route to the destination.
	BlackHoled
)

func (s PathStatus) String() string {
	switch s {
	case Delivered:
		return "delivered"
	case Looped:
		return "looped"
	case BlackHoled:
		return "blackholed"
	default:
		return "unknown"
	}
}

// Path is one forwarding path: the device sequence from source host toward
// the destination, plus the walk outcome.
type Path struct {
	Hops   []string
	Status PathStatus
}

// Key returns a canonical string for set comparisons.
func (p Path) Key() string {
	return p.Status.String() + ":" + strings.Join(p.Hops, ">")
}

// Ingress returns the first router on the path ("" if none).
func (p Path) Ingress() string {
	if len(p.Hops) >= 2 {
		return p.Hops[1]
	}
	return ""
}

// Egress returns the last router on a delivered path ("" if none).
func (p Path) Egress() string {
	if p.Status == Delivered && len(p.Hops) >= 2 {
		return p.Hops[len(p.Hops)-2]
	}
	if len(p.Hops) >= 1 && p.Status != Delivered {
		return p.Hops[len(p.Hops)-1]
	}
	return ""
}

// maxTraceDepth bounds a single walk; maxTracePaths bounds the ECMP
// fan-out collected per host pair.
const (
	maxTraceDepth = 64
	maxTracePaths = 256
)

// Trace walks the FIBs from host src toward host dst and returns every
// forwarding path (ECMP branches explored exhaustively up to
// maxTracePaths), in canonical sorted order.
func (s *Snapshot) Trace(src, dst string) []Path { return s.TraceFrom(src, dst) }

// TraceFrom is Trace with an arbitrary starting device (host or router).
// Algorithm 2 of the paper uses it to check which fake hosts remain
// reachable *from each router* after noise filters are added.
//
// The walk is served by the Snapshot's per-destination engine (see
// dataplane.go), so repeated traces toward the same destination — the
// shape of every caller — share path enumeration work. Returned paths are
// cached: callers must treat them as read-only.
func (s *Snapshot) TraceFrom(start, dst string) []Path {
	e := s.engineFor(dst)
	if e == nil {
		return nil
	}
	ps, _ := e.pathsFor(start)
	return ps
}

// traceNaive is the seed per-pair recursive walker, kept verbatim (plus
// the key-once canonical sort) as the differential-testing and
// benchmarking reference for the memoized engine.
func (s *Snapshot) traceNaive(start, dst string) []Path {
	dstPfx, ok := s.Net.HostPrefix[dst]
	if !ok {
		return nil
	}
	dstAddr := hostAddr(s.Net, dst)
	var out []Path
	var walk func(cur string, hops []string, seen map[string]bool)
	walk = func(cur string, hops []string, seen map[string]bool) {
		if len(out) >= maxTracePaths {
			return
		}
		hops = append(hops, cur)
		if cur == dst {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Delivered})
			return
		}
		if seen[cur] {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Looped})
			return
		}
		if len(hops) > maxTraceDepth {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Looped})
			return
		}
		seen[cur] = true
		defer delete(seen, cur)
		fib := s.FIBs[cur]
		var rt *Route
		if fib != nil {
			// Host LANs are the most specific prefixes in our model, so
			// an exact hit on the destination prefix IS the LPM result;
			// the linear scan only runs for aggregated/default routes.
			if exact := fib[dstPfx]; exact != nil {
				rt = exact
			} else {
				rt = fib.Lookup(dstAddr)
			}
		}
		if rt == nil || len(rt.NextHops) == 0 {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: BlackHoled})
			return
		}
		for _, nh := range rt.NextHops {
			walk(nh.Device, hops, seen)
		}
	}
	walk(start, nil, make(map[string]bool))
	out, _ = sortPathsByKey(out)
	return out
}

// hostAddr returns the host's interface address.
func hostAddr(n *Net, host string) netip.Addr {
	d := n.Cfg.Device(host)
	for _, i := range d.Interfaces {
		if i.Addr.IsValid() {
			return i.Addr.Addr()
		}
	}
	return netip.Addr{}
}

// Pair identifies an ordered host pair.
type Pair struct{ Src, Dst string }

// DataPlane is the collection of all host-to-host routing paths — the DP of
// the paper's formalization. Path slices are shared with the Snapshot's
// per-destination caches: treat them as read-only.
type DataPlane struct {
	Pairs map[Pair][]Path
	// fps holds each pair's canonical path-set fingerprint — the 128-bit
	// digest of the sorted path keys joined with "\n" (exactly pathSetKey
	// of the pair's paths) — precomputed at extraction so EqualOver/
	// DiffPairs/ExactlyKeptFraction compare 16-byte values instead of
	// re-sorting, and so the DataPlane retains no per-pair key strings.
	// Nil for hand-assembled DataPlanes, which fall back to hashing
	// pathSetKey.
	fps map[Pair]Digest
}

// pairDigest returns the pair's canonical path-set fingerprint.
func (dp *DataPlane) pairDigest(k Pair) Digest {
	if dp.fps != nil {
		if fp, ok := dp.fps[k]; ok {
			return fp
		}
	}
	return digestOfKey(pathSetKey(dp.Pairs[k]))
}

// ExtractDataPlane traces every ordered pair of hosts in the network.
func (s *Snapshot) ExtractDataPlane() *DataPlane {
	return s.DataPlaneFor(s.Net.Cfg.Hosts())
}

// DataPlaneFor traces every ordered pair drawn from the given host list
// (used to restrict the anonymized network's DP to real hosts). The work
// is sharded by destination over the Snapshot's worker pool; results land
// in index-addressed slots, so the output is identical at any parallelism.
func (s *Snapshot) DataPlaneFor(hosts []string) *DataPlane {
	return s.dataPlaneFor(hosts, nil, nil)
}

// DataPlaneForDirty is DataPlaneFor carrying forward prior results: pairs
// whose destination the filter diff does not affect are copied from prev
// instead of re-traced. A nil diff (or nil prev) means everything is
// dirty; an empty diff reuses prev wholesale. Correctness rests on the
// per-destination FIB independence invariant documented in
// InvalidateFilters.
func (s *Snapshot) DataPlaneForDirty(hosts []string, prev *DataPlane, diff *FilterDiff) *DataPlane {
	if prev == nil {
		return s.dataPlaneFor(hosts, nil, nil)
	}
	return s.dataPlaneFor(hosts, prev, diff)
}

// dpColumn is one destination's column of the data plane: the paths and
// fingerprints from every source in host-list order (the src==dst slot
// stays nil).
type dpColumn struct {
	paths [][]Path
	fps   []Digest
}

func (s *Snapshot) dataPlaneFor(hosts []string, prev *DataPlane, diff *FilterDiff) *DataPlane {
	cols := make([]dpColumn, len(hosts))
	forEachIndex(s.traceWorkers(), len(hosts), func(j int) {
		dst := hosts[j]
		col := dpColumn{paths: make([][]Path, len(hosts)), fps: make([]Digest, len(hosts))}
		reuse := prev != nil && !diff.Affects(s.Net.HostPrefix[dst])
		var e *destEngine
		for i, src := range hosts {
			if src == dst {
				continue
			}
			k := Pair{Src: src, Dst: dst}
			if reuse {
				if ps, ok := prev.Pairs[k]; ok {
					col.paths[i] = ps
					col.fps[i] = prev.pairDigest(k)
					continue
				}
			}
			if e == nil {
				e = s.engineFor(dst)
				if e == nil {
					// Unknown destination: nil paths, like Trace.
					break
				}
			}
			col.paths[i], col.fps[i] = e.pathsFor(src)
		}
		cols[j] = col
	})
	n := len(hosts) * (len(hosts) - 1)
	dp := &DataPlane{Pairs: make(map[Pair][]Path, n), fps: make(map[Pair]Digest, n)}
	for j, dst := range hosts {
		for i, src := range hosts {
			if src == dst {
				continue
			}
			k := Pair{Src: src, Dst: dst}
			dp.Pairs[k] = cols[j].paths[i]
			dp.fps[k] = cols[j].fps[i]
		}
	}
	return dp
}

// pathSetKey canonicalizes a path list for equality checks.
func pathSetKey(ps []Path) string {
	keys := make([]string, 0, len(ps))
	for _, p := range ps {
		keys = append(keys, p.Key())
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// EqualOver reports whether two data planes agree on every ordered pair of
// the given hosts — the paper's route equivalence check.
func EqualOver(a, b *DataPlane, hosts []string) bool {
	return len(DiffPairs(a, b, hosts)) == 0
}

// DiffPairs returns the ordered pairs (drawn from hosts) whose path sets
// differ between two data planes, in sorted order.
func DiffPairs(a, b *DataPlane, hosts []string) []Pair {
	var out []Pair
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			k := Pair{Src: src, Dst: dst}
			if a.pairDigest(k) != b.pairDigest(k) {
				out = append(out, k)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// ExactlyKeptFraction returns the fraction of ordered host pairs whose path
// sets are preserved exactly — the paper's route utility metric P_U
// (Fig. 8).
func ExactlyKeptFraction(orig, anon *DataPlane, hosts []string) float64 {
	total := 0
	kept := 0
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			total++
			k := Pair{Src: src, Dst: dst}
			if orig.pairDigest(k) == anon.pairDigest(k) {
				kept++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(kept) / float64(total)
}

// Reachable reports whether at least one delivered path exists for the
// pair in the data plane.
func (dp *DataPlane) Reachable(src, dst string) bool {
	for _, p := range dp.Pairs[Pair{Src: src, Dst: dst}] {
		if p.Status == Delivered {
			return true
		}
	}
	return false
}

// Delivered returns only the delivered paths for a pair.
func (dp *DataPlane) Delivered(src, dst string) []Path {
	var out []Path
	for _, p := range dp.Pairs[Pair{Src: src, Dst: dst}] {
		if p.Status == Delivered {
			out = append(out, p)
		}
	}
	return out
}
