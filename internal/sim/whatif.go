package sim

import "fmt"

// This file answers what-if queries: forwarding under a single failed
// element. The failure model is deliberately *data-plane only* — the failed
// node or link is pruned from the per-destination successor graphs, but the
// FIBs are those computed before the failure. No control-plane
// reconvergence is simulated: the question answered is "where does traffic
// go in the window after the element dies and before routing reacts",
// which is the transient the verification literature's what-if queries
// target, and it is exactly what lets the query engine serve these from
// the cached per-destination engines instead of re-simulating.
//
// A source whose successor graph cannot reach the failed element is
// provably unaffected; its cached (no-failure) path set is reused
// verbatim. Only sources that can reach the failure are re-walked, with
// the pruned edges skipped. The Snapshot counts both outcomes so callers
// (and the acceptance tests) can assert that what-if batches re-trace only
// dirty work.

// Failure is a single failed element: exactly one of a node (router or
// host, by device name) or an undirected link (both endpoint device
// names).
type Failure struct {
	Node  string `json:"node,omitempty"`
	LinkA string `json:"link_a,omitempty"`
	LinkB string `json:"link_b,omitempty"`
}

// IsZero reports whether no failure is specified.
func (f Failure) IsZero() bool { return f.Node == "" && f.LinkA == "" && f.LinkB == "" }

// Validate checks that the failure names exactly one element.
func (f Failure) Validate() error {
	hasNode := f.Node != ""
	hasLink := f.LinkA != "" || f.LinkB != ""
	switch {
	case hasNode && hasLink:
		return fmt.Errorf("sim: failure specifies both a node and a link")
	case !hasNode && !hasLink:
		return fmt.Errorf("sim: empty failure")
	case hasLink && (f.LinkA == "" || f.LinkB == ""):
		return fmt.Errorf("sim: link failure needs both endpoints")
	case hasLink && f.LinkA == f.LinkB:
		return fmt.Errorf("sim: link failure endpoints must differ")
	}
	return nil
}

func (f Failure) String() string {
	if f.Node != "" {
		return "node(" + f.Node + ")"
	}
	return "link(" + f.LinkA + "<->" + f.LinkB + ")"
}

// cacheKey is the canonical per-engine cache key; link endpoints are
// order-insensitive.
func (f Failure) cacheKey() string {
	if f.Node != "" {
		return "n\x00" + f.Node
	}
	a, b := f.LinkA, f.LinkB
	if b < a {
		a, b = b, a
	}
	return "l\x00" + a + "\x00" + b
}

// prunes reports whether the failure removes the transition cur→next.
// A failed node swallows every transition into it; a failed link removes
// the transitions between its endpoints in both directions.
func (f Failure) prunes(cur, next string) bool {
	if f.Node != "" {
		return next == f.Node
	}
	return (cur == f.LinkA && next == f.LinkB) || (cur == f.LinkB && next == f.LinkA)
}

// TraceUnderFailure walks the FIBs from start toward host dst with a
// single failed element pruned from the forwarding graph. FIBs are the
// pre-failure ones (see the failure model above). Semantics relative to
// Trace:
//
//   - a device whose every surviving next hop is pruned black-holes the
//     walk there (the packet has nowhere live to go);
//   - the failed node never appears as a hop — if start itself is the
//     failed node the result is the single path [start] black-holed;
//   - loop and depth truncation are unchanged.
//
// A zero failure degrades to TraceFrom. Results are cached per
// (failure, start) on the destination engine; callers must treat the
// returned paths as read-only.
func (s *Snapshot) TraceUnderFailure(start, dst string, f Failure) []Path {
	if f.IsZero() {
		return s.TraceFrom(start, dst)
	}
	e := s.engineFor(dst)
	if e == nil {
		return nil
	}
	ps, _ := e.pathsUnderFailure(start, f)
	return ps
}

// WhatIfStats returns how many what-if traces were served by re-walking a
// pruned graph (retraced) versus reusing the cached no-failure result
// because the source provably cannot reach the failed element (reused).
// Cache hits on previously answered (failure, src, dst) triples count as
// neither.
func (s *Snapshot) WhatIfStats() (retraced, reused int64) {
	return s.whatIfRetraced.Load(), s.whatIfReused.Load()
}

// pathsUnderFailure is pathsFor under a failure: reuse the no-failure
// result when the failure is unreachable from src in the successor graph,
// otherwise run the pruned walk. Results are cached per (failure, src).
func (e *destEngine) pathsUnderFailure(src string, f Failure) ([]Path, Digest) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := f.cacheKey() + "\x00" + src
	if r, ok := e.failRes[key]; ok {
		return r.paths, r.fp
	}
	if !e.built {
		e.build()
	}
	i := e.indexOf(src)
	var ps []Path
	var fp Digest
	if !e.failureReaches(i, f) {
		ps, fp = e.pathsForLocked(src)
		e.snap.whatIfReused.Add(1)
	} else {
		ps, fp = sortPathsByKey(e.traceFail(i, f))
		e.snap.whatIfRetraced.Add(1)
	}
	if e.failRes == nil {
		e.failRes = make(map[string]srcResult)
	}
	e.failRes[key] = srcResult{paths: ps, fp: fp}
	return ps, fp
}

// failureReaches reports whether the successor graph from start can
// encounter the failed element. It over-approximates (ignores depth and
// path caps), which is sound: a false return guarantees the pruned walk
// would equal the unpruned one. Callers hold mu.
func (e *destEngine) failureReaches(start int32, f Failure) bool {
	if f.Node != "" && e.nameAt[start] == f.Node {
		return true
	}
	seen := make([]bool, len(e.nodes))
	stack := []int32{start}
	seen[start] = true
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		name := e.nameAt[cur]
		for _, s := range e.nodes[cur].succ {
			if f.prunes(name, e.nameAt[s]) {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// traceFail enumerates every forwarding path from start with the failed
// element pruned, using the exact recursive-walker semantics (DFS in
// next-hop order, maxTraceDepth / maxTracePaths truncation). Output order
// is DFS order, unsorted. Callers hold mu.
func (e *destEngine) traceFail(start int32, f Failure) []Path {
	if f.Node != "" && e.nameAt[start] == f.Node {
		return []Path{{Hops: []string{f.Node}, Status: BlackHoled}}
	}
	var out []Path
	onStack := make([]bool, len(e.nodes))
	var walk func(cur int32, hops []string)
	walk = func(cur int32, hops []string) {
		if len(out) >= maxTracePaths {
			return
		}
		n := &e.nodes[cur]
		name := e.nameAt[cur]
		hops = append(hops, name)
		if n.kind == deliveredNode {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Delivered})
			return
		}
		if onStack[cur] {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Looped})
			return
		}
		if len(hops) > maxTraceDepth {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Looped})
			return
		}
		if n.kind == blackholeNode {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: BlackHoled})
			return
		}
		onStack[cur] = true
		live := 0
		for _, s := range n.succ {
			if f.prunes(name, e.nameAt[s]) {
				continue
			}
			live++
			walk(s, hops)
		}
		onStack[cur] = false
		if live == 0 {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: BlackHoled})
		}
	}
	walk(start, nil)
	return out
}
