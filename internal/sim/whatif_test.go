package sim

import (
	"math/rand"
	"testing"

	"confmask/internal/netgen"
)

// traceFailNaive is the reference what-if walker: the seed recursive
// walker with the failed element pruned — transitions into a failed node
// or across a failed link are skipped, and a device left with no live
// next hop black-holes the walk there. Kept independent of the engine so
// the differential tests pin TraceUnderFailure against it.
func traceFailNaive(s *Snapshot, start, dst string, f Failure) []Path {
	dstPfx, ok := s.Net.HostPrefix[dst]
	if !ok {
		return nil
	}
	if f.Node == start {
		return []Path{{Hops: []string{start}, Status: BlackHoled}}
	}
	dstAddr := hostAddr(s.Net, dst)
	var out []Path
	var walk func(cur string, hops []string, seen map[string]bool)
	walk = func(cur string, hops []string, seen map[string]bool) {
		if len(out) >= maxTracePaths {
			return
		}
		hops = append(hops, cur)
		if cur == dst {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Delivered})
			return
		}
		if seen[cur] {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Looped})
			return
		}
		if len(hops) > maxTraceDepth {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: Looped})
			return
		}
		fib := s.FIBs[cur]
		var rt *Route
		if fib != nil {
			if exact := fib[dstPfx]; exact != nil {
				rt = exact
			} else {
				rt = fib.Lookup(dstAddr)
			}
		}
		if rt == nil || len(rt.NextHops) == 0 {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: BlackHoled})
			return
		}
		seen[cur] = true
		defer delete(seen, cur)
		live := 0
		for _, nh := range rt.NextHops {
			if f.prunes(cur, nh.Device) {
				continue
			}
			live++
			walk(nh.Device, hops, seen)
		}
		if live == 0 {
			out = append(out, Path{Hops: append([]string(nil), hops...), Status: BlackHoled})
		}
	}
	walk(start, nil, make(map[string]bool))
	out, _ = sortPathsByKey(out)
	return out
}

// randomFailures samples node and link failures covering every link plus a
// handful of node failures (routers and hosts).
func randomFailures(cfg interface{ Names() []string }, links []*Link, rng *rand.Rand) []Failure {
	var fs []Failure
	for _, l := range links {
		fs = append(fs, Failure{LinkA: l.A.Device, LinkB: l.B.Device})
	}
	names := cfg.Names()
	for i := 0; i < 4 && i < len(names); i++ {
		fs = append(fs, Failure{Node: names[rng.Intn(len(names))]})
	}
	return fs
}

// TestWhatIfMatchesNaiveRandom pins TraceUnderFailure against the
// reference pruned walker on random converged topologies: every link
// failure and sampled node failures, from every device toward every host.
func TestWhatIfMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9182))
	protos := []netgen.Proto{netgen.OSPF, netgen.RIP, netgen.EIGRP}
	for trial := 0; trial < 8; trial++ {
		proto := protos[trial%len(protos)]
		cfg := randomSimNet(t, proto, rng)
		snap, err := SimulateOpts(cfg, Options{Parallelism: rng.Intn(5)})
		if err != nil {
			t.Fatal(err)
		}
		hosts := cfg.Hosts()
		for _, f := range randomFailures(cfg, snap.Net.Links, rng) {
			for _, dev := range cfg.Names() {
				for _, dst := range hosts {
					got := snap.TraceUnderFailure(dev, dst, f)
					want := traceFailNaive(snap, dev, dst, f)
					if !samePaths(got, want) {
						t.Fatalf("trial %d: TraceUnderFailure(%s, %s, %v)\n got: %v\nwant: %v",
							trial, dev, dst, f, got, want)
					}
				}
			}
		}
	}
}

// TestWhatIfMatchesNaiveCorrupted repeats the differential check on FIBs
// mutated to contain forwarding loops, black holes, and discard next hops
// — what-if pruning must compose with pathological graphs exactly like
// the reference walker.
func TestWhatIfMatchesNaiveCorrupted(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 10; trial++ {
		cfg := randomSimNet(t, netgen.OSPF, rng)
		snap, err := SimulateOpts(cfg, Options{Parallelism: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		hosts := cfg.Hosts()
		routers := cfg.Routers()
		for m := 0; m < 2+rng.Intn(6); m++ {
			r := routers[rng.Intn(len(routers))]
			h := hosts[rng.Intn(len(hosts))]
			pfx := snap.Net.HostPrefix[h]
			fib := snap.FIBs[r]
			if fib == nil {
				continue
			}
			switch rng.Intn(4) {
			case 0:
				tgt := routers[rng.Intn(len(routers))]
				fib[pfx] = &Route{Prefix: pfx, Source: SrcOSPF, NextHops: []NextHop{{Device: tgt}}}
			case 1:
				t1 := routers[rng.Intn(len(routers))]
				t2 := routers[rng.Intn(len(routers))]
				fib[pfx] = &Route{Prefix: pfx, Source: SrcOSPF, NextHops: sortNextHops([]NextHop{{Device: t1}, {Device: t2, Iface: "x"}})}
			case 2:
				delete(fib, pfx)
			case 3:
				fib[pfx] = &Route{Prefix: pfx, Source: SrcStatic, NextHops: []NextHop{{Device: DiscardDevice, Iface: "Null0"}}}
			}
		}
		for _, f := range randomFailures(cfg, snap.Net.Links, rng) {
			for _, dev := range cfg.Names() {
				for _, dst := range hosts {
					got := snap.TraceUnderFailure(dev, dst, f)
					want := traceFailNaive(snap, dev, dst, f)
					if !samePaths(got, want) {
						t.Fatalf("trial %d: corrupted TraceUnderFailure(%s, %s, %v)\n got: %v\nwant: %v",
							trial, dev, dst, f, got, want)
					}
				}
			}
		}
	}
}

// chainNet builds ha—r0—r1—r2—hb with hc also attached to r1.
func chainNet(t *testing.T) *Snapshot {
	t.Helper()
	b := netgen.NewBuilder(netgen.OSPF)
	b.Router("r0")
	b.Router("r1")
	b.Router("r2")
	b.Link("r0", "r1")
	b.Link("r1", "r2")
	b.Host("ha", "r0")
	b.Host("hb", "r2")
	b.Host("hc", "r1")
	cfg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := SimulateOpts(cfg, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestWhatIfCounters asserts the reuse/retrace accounting: a failure the
// source cannot reach reuses the cached result, a failure on the path
// re-traces, and answering the same query again hits the per-engine cache
// without touching either counter.
func TestWhatIfCounters(t *testing.T) {
	snap := chainNet(t)

	// Failing host hc cannot affect ha→hb: hc never appears in hb's
	// successor graph.
	ps := snap.TraceUnderFailure("ha", "hb", Failure{Node: "hc"})
	if len(ps) != 1 || ps[0].Status != Delivered {
		t.Fatalf("ha->hb under hc failure = %v, want delivered", ps)
	}
	retraced, reused := snap.WhatIfStats()
	if retraced != 0 || reused != 1 {
		t.Fatalf("after unaffected query: retraced=%d reused=%d, want 0/1", retraced, reused)
	}

	// Failing the r0—r1 link black-holes ha→hb at r0.
	ps = snap.TraceUnderFailure("ha", "hb", Failure{LinkA: "r1", LinkB: "r0"})
	if len(ps) != 1 || ps[0].Status != BlackHoled || ps[0].Hops[len(ps[0].Hops)-1] != "r0" {
		t.Fatalf("ha->hb under r0-r1 failure = %v, want blackholed at r0", ps)
	}
	retraced, reused = snap.WhatIfStats()
	if retraced != 1 || reused != 1 {
		t.Fatalf("after affected query: retraced=%d reused=%d, want 1/1", retraced, reused)
	}

	// Same failure again (endpoints swapped — canonical key): cache hit,
	// no counter movement.
	_ = snap.TraceUnderFailure("ha", "hb", Failure{LinkA: "r0", LinkB: "r1"})
	retraced, reused = snap.WhatIfStats()
	if retraced != 1 || reused != 1 {
		t.Fatalf("after repeat query: retraced=%d reused=%d, want 1/1", retraced, reused)
	}
}

// TestWhatIfLoopAndBlackHoleClassification pins classification under
// failure on a deliberately broken FIB: a forwarding loop keeps its
// Looped status when the failure is elsewhere, and failing a link inside
// the loop converts it to a black hole at the last live device.
func TestWhatIfLoopAndBlackHoleClassification(t *testing.T) {
	snap := chainNet(t)
	// Corrupt r1: traffic toward hb bounces back to r0 (loop r0<->r1).
	pfx := snap.Net.HostPrefix["hb"]
	snap.FIBs["r1"][pfx] = &Route{Prefix: pfx, Source: SrcOSPF, NextHops: []NextHop{{Device: "r0"}}}

	// Failure elsewhere (node r2): the loop is still the outcome.
	ps := snap.TraceUnderFailure("ha", "hb", Failure{Node: "r2"})
	if len(ps) != 1 || ps[0].Status != Looped {
		t.Fatalf("ha->hb with loop, r2 failed = %v, want looped", ps)
	}

	// Failing the r0—r1 link severs the loop: black hole at r0.
	ps = snap.TraceUnderFailure("ha", "hb", Failure{LinkA: "r0", LinkB: "r1"})
	if len(ps) != 1 || ps[0].Status != BlackHoled || ps[0].Hops[len(ps[0].Hops)-1] != "r0" {
		t.Fatalf("ha->hb with loop, r0-r1 failed = %v, want blackholed at r0", ps)
	}

	// Failing the destination host itself: gateway r2 has no live hop...
	// but r1's corruption already loops before reaching r2; restore r1
	// first to make the case precise.
	snap2 := chainNet(t)
	ps = snap2.TraceUnderFailure("ha", "hb", Failure{Node: "hb"})
	if len(ps) != 1 || ps[0].Status != BlackHoled || ps[0].Hops[len(ps[0].Hops)-1] != "r2" {
		t.Fatalf("ha->hb with hb failed = %v, want blackholed at r2", ps)
	}

	// Failed source: the walk cannot start.
	ps = snap2.TraceUnderFailure("ha", "hb", Failure{Node: "ha"})
	if len(ps) != 1 || ps[0].Status != BlackHoled || len(ps[0].Hops) != 1 {
		t.Fatalf("ha->hb with ha failed = %v, want [ha] blackholed", ps)
	}
}

// TestFailureValidate covers the failure well-formedness rules.
func TestFailureValidate(t *testing.T) {
	cases := []struct {
		f  Failure
		ok bool
	}{
		{Failure{Node: "r0"}, true},
		{Failure{LinkA: "r0", LinkB: "r1"}, true},
		{Failure{}, false},
		{Failure{Node: "r0", LinkA: "r0", LinkB: "r1"}, false},
		{Failure{LinkA: "r0"}, false},
		{Failure{LinkA: "r0", LinkB: "r0"}, false},
	}
	for _, c := range cases {
		if err := c.f.Validate(); (err == nil) != c.ok {
			t.Fatalf("Validate(%+v) = %v, want ok=%v", c.f, err, c.ok)
		}
	}
}
