// Package spec mines network specifications from a data plane and compares
// specification sets — the substitute for Config2Spec (Birkner et al.,
// NSDI 2020) that the paper's Fig. 9 uses to quantify how much forwarding
// behavior an anonymization preserves.
//
// Three policy classes are mined, matching the classes the paper compares:
// Reachability(src → dst), Waypoint(src → dst via router), and
// LoadBalance(src → dst over n paths).
package spec

import (
	"fmt"
	"sort"
	"strings"

	"confmask/internal/sim"
)

// PolicyType enumerates the mined specification classes.
type PolicyType int

const (
	// Reachability: at least one delivered path exists from Src to Dst.
	Reachability PolicyType = iota
	// Waypoint: every delivered path from Src to Dst traverses Via.
	Waypoint
	// LoadBalance: traffic from Src to Dst is split over N ≥ 2 paths.
	LoadBalance
)

func (t PolicyType) String() string {
	switch t {
	case Reachability:
		return "reachability"
	case Waypoint:
		return "waypoint"
	case LoadBalance:
		return "loadbalance"
	default:
		return fmt.Sprintf("PolicyType(%d)", int(t))
	}
}

// Policy is one mined specification.
type Policy struct {
	Type PolicyType
	Src  string
	Dst  string
	Via  string // Waypoint only
	N    int    // LoadBalance only
}

// Key returns the canonical identity of the policy for set operations.
func (p Policy) Key() string {
	switch p.Type {
	case Waypoint:
		return fmt.Sprintf("waypoint|%s|%s|%s", p.Src, p.Dst, p.Via)
	case LoadBalance:
		return fmt.Sprintf("loadbalance|%s|%s|%d", p.Src, p.Dst, p.N)
	default:
		return fmt.Sprintf("reachability|%s|%s", p.Src, p.Dst)
	}
}

func (p Policy) String() string { return p.Key() }

// PathOracle answers forwarding-path queries from an arbitrary source
// device to a destination host. *sim.Snapshot implements it via TraceFrom;
// the NetHide baseline implements it from its forwarding trees.
type PathOracle interface {
	TraceFrom(src, dst string) []sim.Path
}

// Mine extracts the specification set of a network the way Config2Spec
// shapes its policies: per (source device, destination) pair — so the
// policy count grows linearly with added destinations, not quadratically.
// It emits one Reachability policy per reachable pair, one Waypoint policy
// per device traversed by every delivered path of a pair, and one
// LoadBalance policy per pair with ≥ 2 delivered paths.
//
// srcs are typically the network's routers (Config2Spec's policy sources)
// and dsts its hosts.
func Mine(oracle PathOracle, srcs, dsts []string) []Policy {
	var out []Policy
	for _, src := range srcs {
		for _, dst := range dsts {
			if src == dst {
				continue
			}
			var paths []sim.Path
			for _, p := range oracle.TraceFrom(src, dst) {
				if p.Status == sim.Delivered {
					paths = append(paths, p)
				}
			}
			if len(paths) == 0 {
				continue
			}
			out = append(out, Policy{Type: Reachability, Src: src, Dst: dst})
			if len(paths) >= 2 {
				out = append(out, Policy{Type: LoadBalance, Src: src, Dst: dst, N: len(paths)})
			}
			for _, via := range commonInterior(paths) {
				out = append(out, Policy{Type: Waypoint, Src: src, Dst: dst, Via: via})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// commonInterior returns the interior devices present on every path, in
// sorted order (the source and destination endpoints are excluded).
func commonInterior(paths []sim.Path) []string {
	counts := make(map[string]int)
	for _, p := range paths {
		seen := make(map[string]bool)
		for i := 1; i+1 < len(p.Hops); i++ {
			seen[p.Hops[i]] = true
		}
		for r := range seen {
			counts[r]++
		}
	}
	var out []string
	for r, c := range counts {
		if c == len(paths) {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

// Comparison reports how an anonymized network's specification set relates
// to the original's — the quantities of Fig. 9.
type Comparison struct {
	// Kept are original policies still present after anonymization.
	Kept []Policy
	// Missing are original policies lost by anonymization.
	Missing []Policy
	// Introduced are policies present only after anonymization.
	Introduced []Policy
	// IntroducedFake counts introduced policies that reference a fake
	// entity (e.g. a fake host endpoint) — benign by construction.
	IntroducedFake int
}

// KeptFraction is |Kept| / |original|.
func (c Comparison) KeptFraction() float64 {
	total := len(c.Kept) + len(c.Missing)
	if total == 0 {
		return 1
	}
	return float64(len(c.Kept)) / float64(total)
}

// IntroducedRatio is |Introduced| / |original|.
func (c Comparison) IntroducedRatio() float64 {
	total := len(c.Kept) + len(c.Missing)
	if total == 0 {
		return 0
	}
	return float64(len(c.Introduced)) / float64(total)
}

// FakeFraction is the share of introduced policies referencing fake
// entities.
func (c Comparison) FakeFraction() float64 {
	if len(c.Introduced) == 0 {
		return 0
	}
	return float64(c.IntroducedFake) / float64(len(c.Introduced))
}

// Compare diffs two mined specification sets. isFake classifies nodes
// introduced by anonymization (nil means nothing is fake).
func Compare(orig, anon []Policy, isFake func(node string) bool) Comparison {
	if isFake == nil {
		isFake = func(string) bool { return false }
	}
	anonSet := make(map[string]bool, len(anon))
	for _, p := range anon {
		anonSet[p.Key()] = true
	}
	origSet := make(map[string]bool, len(orig))
	for _, p := range orig {
		origSet[p.Key()] = true
	}
	var c Comparison
	for _, p := range orig {
		if anonSet[p.Key()] {
			c.Kept = append(c.Kept, p)
		} else {
			c.Missing = append(c.Missing, p)
		}
	}
	for _, p := range anon {
		if origSet[p.Key()] {
			continue
		}
		c.Introduced = append(c.Introduced, p)
		if isFake(p.Src) || isFake(p.Dst) || (p.Via != "" && isFake(p.Via)) {
			c.IntroducedFake++
		}
	}
	return c
}

// IsFakeBySuffix returns an isFake classifier recognizing the anonymizer's
// fake-host naming convention.
func IsFakeBySuffix() func(string) bool {
	return func(node string) bool { return strings.Contains(node, "-fk") }
}
