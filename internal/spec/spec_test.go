package spec

import (
	"testing"

	"confmask/internal/sim"
)

// fakeOracle answers path queries from a fixed table.
type fakeOracle map[[2]string][]sim.Path

func (f fakeOracle) TraceFrom(src, dst string) []sim.Path {
	return f[[2]string{src, dst}]
}

func path(hops ...string) sim.Path {
	return sim.Path{Hops: hops, Status: sim.Delivered}
}

func TestMineReachabilityAndWaypoint(t *testing.T) {
	o := fakeOracle{
		{"r1", "h2"}: {path("r1", "r2", "h2")},
		{"r2", "h2"}: {{Hops: []string{"r2"}, Status: sim.BlackHoled}},
	}
	got := Mine(o, []string{"r1", "r2"}, []string{"h2"})
	keys := map[string]bool{}
	for _, p := range got {
		keys[p.Key()] = true
	}
	for _, want := range []string{
		"reachability|r1|h2",
		"waypoint|r1|h2|r2",
	} {
		if !keys[want] {
			t.Errorf("missing %s (got %v)", want, got)
		}
	}
	if keys["reachability|r2|h2"] {
		t.Error("black-holed pair must not be reachable")
	}
	if len(got) != 2 {
		t.Errorf("unexpected extra specs: %v", got)
	}
}

func TestMineLoadBalanceAndCommonWaypoints(t *testing.T) {
	o := fakeOracle{
		{"r1", "h2"}: {
			path("r1", "ra", "r4", "h2"),
			path("r1", "rb", "r4", "h2"),
		},
	}
	got := Mine(o, []string{"r1"}, []string{"h2"})
	keys := map[string]bool{}
	for _, p := range got {
		keys[p.Key()] = true
	}
	if !keys["loadbalance|r1|h2|2"] {
		t.Errorf("missing loadbalance spec: %v", got)
	}
	// r4 is on both paths; ra/rb only on one each.
	if !keys["waypoint|r1|h2|r4"] {
		t.Errorf("missing common waypoint: %v", got)
	}
	if keys["waypoint|r1|h2|ra"] || keys["waypoint|r1|h2|rb"] {
		t.Errorf("non-common waypoint mined: %v", got)
	}
}

func TestMineSkipsSelfPairs(t *testing.T) {
	o := fakeOracle{
		{"r1", "r1"}: {path("r1")},
	}
	if got := Mine(o, []string{"r1"}, []string{"r1"}); len(got) != 0 {
		t.Fatalf("self pair mined: %v", got)
	}
}

func TestMineLinearInDestinations(t *testing.T) {
	// The Config2Spec policy shape: adding a destination adds O(|srcs|)
	// policies, not O(|srcs|·|dsts|) — the property behind the paper's
	// Fig. 9 "introduced specifications" ratio.
	o := fakeOracle{
		{"r1", "h1"}: {path("r1", "h1")},
		{"r1", "h2"}: {path("r1", "h2")},
		{"r2", "h1"}: {path("r2", "h1")},
		{"r2", "h2"}: {path("r2", "h2")},
	}
	one := Mine(o, []string{"r1", "r2"}, []string{"h1"})
	two := Mine(o, []string{"r1", "r2"}, []string{"h1", "h2"})
	if len(two) != 2*len(one) {
		t.Fatalf("policy growth not linear: %d vs %d", len(one), len(two))
	}
}

func TestCompare(t *testing.T) {
	orig := []Policy{
		{Type: Reachability, Src: "r1", Dst: "h2"},
		{Type: Waypoint, Src: "r1", Dst: "h2", Via: "r1"},
	}
	anon := []Policy{
		{Type: Reachability, Src: "r1", Dst: "h2"},
		{Type: Reachability, Src: "r1", Dst: "h2-fk1"},
		{Type: Waypoint, Src: "r1", Dst: "h2", Via: "r9"},
	}
	c := Compare(orig, anon, IsFakeBySuffix())
	if len(c.Kept) != 1 || len(c.Missing) != 1 || len(c.Introduced) != 2 {
		t.Fatalf("kept=%d missing=%d introduced=%d", len(c.Kept), len(c.Missing), len(c.Introduced))
	}
	if c.IntroducedFake != 1 {
		t.Fatalf("fake introduced = %d", c.IntroducedFake)
	}
	if got := c.KeptFraction(); got != 0.5 {
		t.Fatalf("kept fraction = %v", got)
	}
	if got := c.IntroducedRatio(); got != 1.0 {
		t.Fatalf("introduced ratio = %v", got)
	}
	if got := c.FakeFraction(); got != 0.5 {
		t.Fatalf("fake fraction = %v", got)
	}
}

func TestCompareEmpty(t *testing.T) {
	c := Compare(nil, nil, nil)
	if c.KeptFraction() != 1 || c.IntroducedRatio() != 0 || c.FakeFraction() != 0 {
		t.Fatalf("degenerate comparison wrong: %+v", c)
	}
}

func TestPolicyKeysDistinct(t *testing.T) {
	ps := []Policy{
		{Type: Reachability, Src: "a", Dst: "b"},
		{Type: Waypoint, Src: "a", Dst: "b", Via: "r"},
		{Type: LoadBalance, Src: "a", Dst: "b", N: 2},
		{Type: LoadBalance, Src: "a", Dst: "b", N: 3},
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Key()] {
			t.Fatalf("duplicate key %s", p.Key())
		}
		seen[p.Key()] = true
	}
}

func TestMineDeterministicOrder(t *testing.T) {
	o := fakeOracle{
		{"r1", "h1"}: {path("r1", "h1")},
		{"r2", "h1"}: {path("r2", "r1", "h1")},
	}
	a := Mine(o, []string{"r1", "r2"}, []string{"h1"})
	b := Mine(o, []string{"r2", "r1"}, []string{"h1"}) // source order must not matter
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].Key(), b[i].Key())
		}
	}
}

func TestIsFakeBySuffix(t *testing.T) {
	f := IsFakeBySuffix()
	if !f("h1-fk1") || f("h1") || f("router-fake") {
		t.Fatal("fake classifier wrong")
	}
}
