// Package topology models the layer-3 topology graph that ConfMask
// anonymizes: an undirected simple graph whose nodes are routers and hosts
// and whose edges are the links recovered from interface prefixes.
//
// The package also implements the graph statistics the paper's evaluation
// uses: router degree sequences, the k-degree anonymity level (minimum
// number of routers sharing a degree, Fig. 6), and the average clustering
// coefficient (Fig. 7).
package topology

import (
	"fmt"
	"sort"
)

// Kind distinguishes router nodes from host nodes.
type Kind int

const (
	// Router is an L3 forwarding device.
	Router Kind = iota
	// Host is an end host attached to exactly one router.
	Host
)

func (k Kind) String() string {
	switch k {
	case Router:
		return "router"
	case Host:
		return "host"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Graph is an undirected simple graph over named nodes. The zero value is
// not usable; construct with New.
type Graph struct {
	kind map[string]Kind
	adj  map[string]map[string]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		kind: make(map[string]Kind),
		adj:  make(map[string]map[string]bool),
	}
}

// AddNode inserts a node. Re-adding an existing node updates its kind.
func (g *Graph) AddNode(id string, k Kind) {
	g.kind[id] = k
	if g.adj[id] == nil {
		g.adj[id] = make(map[string]bool)
	}
}

// HasNode reports whether id is a node of the graph.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.kind[id]
	return ok
}

// KindOf returns the kind of a node; it panics if the node is absent.
func (g *Graph) KindOf(id string) Kind {
	k, ok := g.kind[id]
	if !ok {
		panic(fmt.Sprintf("topology: unknown node %q", id))
	}
	return k
}

// AddEdge inserts an undirected edge; both endpoints must already exist.
// Self-loops are rejected. Adding an existing edge is a no-op.
func (g *Graph) AddEdge(a, b string) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on %q", a)
	}
	if !g.HasNode(a) || !g.HasNode(b) {
		return fmt.Errorf("topology: edge (%q,%q) references unknown node", a, b)
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
	return nil
}

// HasEdge reports whether (a,b) is an edge.
func (g *Graph) HasEdge(a, b string) bool {
	return g.adj[a][b]
}

// Nodes returns all node IDs in sorted order.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.kind))
	for id := range g.kind {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NodesOf returns all node IDs of the given kind in sorted order.
func (g *Graph) NodesOf(k Kind) []string {
	var out []string
	for id, kk := range g.kind {
		if kk == k {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Neighbors returns the sorted neighbor set of a node.
func (g *Graph) Neighbors(id string) []string {
	out := make([]string, 0, len(g.adj[id]))
	for n := range g.adj[id] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Edge is an undirected edge with endpoints in canonical (sorted) order.
type Edge struct{ A, B string }

// CanonEdge returns the canonical form of the edge (a,b).
func CanonEdge(a, b string) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{A: a, B: b}
}

// Edges returns every edge once, in canonical sorted order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for a, ns := range g.adj {
		for b := range ns {
			if a < b {
				out = append(out, Edge{A: a, B: b})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.kind) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, ns := range g.adj {
		total += len(ns)
	}
	return total / 2
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for id, k := range g.kind {
		c.AddNode(id, k)
	}
	for a, ns := range g.adj {
		for b := range ns {
			c.adj[a][b] = true
		}
	}
	return c
}

// RouterDegree returns deg_R(r): the number of router neighbors of r.
// Host attachments do not count, matching Definition 3.1 of the paper.
func (g *Graph) RouterDegree(r string) int {
	d := 0
	for n := range g.adj[r] {
		if g.kind[n] == Router {
			d++
		}
	}
	return d
}

// RouterDegreeSequence returns the router-to-router degree of every router,
// keyed by router ID.
func (g *Graph) RouterDegreeSequence() map[string]int {
	out := make(map[string]int)
	for id, k := range g.kind {
		if k == Router {
			out[id] = g.RouterDegree(id)
		}
	}
	return out
}

// MinSameDegreeCount returns k_d: the minimum, over all distinct router
// degrees present, of the number of routers having that degree. A graph is
// k-degree anonymous exactly when MinSameDegreeCount ≥ k (Definition 3.1).
func (g *Graph) MinSameDegreeCount() int {
	counts := make(map[int]int)
	for id, k := range g.kind {
		if k == Router {
			counts[g.RouterDegree(id)]++
		}
	}
	if len(counts) == 0 {
		return 0
	}
	min := -1
	for _, c := range counts {
		if min == -1 || c < min {
			min = c
		}
	}
	return min
}

// ClusteringCoefficient returns the average local clustering coefficient
// over router nodes, computed on the router-to-router subgraph — the
// structural utility metric of Fig. 7. Routers with fewer than two router
// neighbors contribute 0.
func (g *Graph) ClusteringCoefficient() float64 {
	routers := g.NodesOf(Router)
	if len(routers) == 0 {
		return 0
	}
	var sum float64
	for _, r := range routers {
		var nbrs []string
		for n := range g.adj[r] {
			if g.kind[n] == Router {
				nbrs = append(nbrs, n)
			}
		}
		d := len(nbrs)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.adj[nbrs[i]][nbrs[j]] {
					links++
				}
			}
		}
		sum += 2 * float64(links) / float64(d*(d-1))
	}
	return sum / float64(len(routers))
}

// Connected reports whether the subgraph induced by router nodes is
// connected (hosts are ignored). An empty graph is considered connected.
func (g *Graph) Connected() bool {
	routers := g.NodesOf(Router)
	if len(routers) == 0 {
		return true
	}
	seen := map[string]bool{routers[0]: true}
	stack := []string{routers[0]}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n := range g.adj[cur] {
			if g.kind[n] == Router && !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(seen) == len(routers)
}

// RouterSubgraph returns a copy of the graph containing only router nodes
// and router-to-router edges.
func (g *Graph) RouterSubgraph() *Graph {
	s := New()
	for id, k := range g.kind {
		if k == Router {
			s.AddNode(id, Router)
		}
	}
	for a, ns := range g.adj {
		if g.kind[a] != Router {
			continue
		}
		for b := range ns {
			if g.kind[b] == Router && a < b {
				_ = s.AddEdge(a, b)
			}
		}
	}
	return s
}

// Supergraph collapses nodes into groups (e.g. routers into autonomous
// systems) and returns the quotient graph: one node per group label, and an
// edge between two labels when any member edge crosses the groups. Nodes
// missing from groupOf are skipped.
func (g *Graph) Supergraph(groupOf map[string]string) *Graph {
	s := New()
	for id, grp := range groupOf {
		if g.HasNode(id) {
			s.AddNode(grp, Router)
		}
	}
	for a, ns := range g.adj {
		ga, ok := groupOf[a]
		if !ok {
			continue
		}
		for b := range ns {
			gb, ok := groupOf[b]
			if !ok || ga == gb {
				continue
			}
			_ = s.AddEdge(ga, gb)
		}
	}
	return s
}

// DiffEdges returns the edges present in h but not in g, in canonical
// order. It is used to recover the fake links introduced by topology
// anonymization.
func DiffEdges(g, h *Graph) []Edge {
	var out []Edge
	for _, e := range h.Edges() {
		if !g.HasEdge(e.A, e.B) {
			out = append(out, e)
		}
	}
	return out
}
