package topology

import (
	"testing"
	"testing/quick"
)

// triangle returns r1-r2-r3 fully meshed, with host h1 on r1.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, r := range []string{"r1", "r2", "r3"} {
		g.AddNode(r, Router)
	}
	g.AddNode("h1", Host)
	for _, e := range [][2]string{{"r1", "r2"}, {"r2", "r3"}, {"r1", "r3"}, {"r1", "h1"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := triangle(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge("r1", "r2") || !g.HasEdge("r2", "r1") {
		t.Fatal("edge should be symmetric")
	}
	if g.HasEdge("r2", "h1") {
		t.Fatal("phantom edge")
	}
	if got := g.Neighbors("r1"); len(got) != 3 {
		t.Fatalf("r1 neighbors = %v", got)
	}
	if g.KindOf("h1") != Host || g.KindOf("r1") != Router {
		t.Fatal("kinds wrong")
	}
	if got := g.NodesOf(Router); len(got) != 3 || got[0] != "r1" {
		t.Fatalf("NodesOf(Router) = %v", got)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New()
	g.AddNode("a", Router)
	if err := g.AddEdge("a", "a"); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge("a", "missing"); err == nil {
		t.Fatal("edge to unknown node accepted")
	}
}

func TestRouterDegreeIgnoresHosts(t *testing.T) {
	g := triangle(t)
	if d := g.RouterDegree("r1"); d != 2 {
		t.Fatalf("RouterDegree(r1) = %d, want 2 (host link must not count)", d)
	}
	seq := g.RouterDegreeSequence()
	if len(seq) != 3 {
		t.Fatalf("degree sequence over %d routers", len(seq))
	}
	for r, d := range seq {
		if d != 2 {
			t.Fatalf("deg(%s) = %d", r, d)
		}
	}
}

func TestMinSameDegreeCount(t *testing.T) {
	g := triangle(t)
	if k := g.MinSameDegreeCount(); k != 3 {
		t.Fatalf("triangle k_d = %d, want 3", k)
	}
	// Attach a degree-1 router: now degrees are {3:1, 2:2, 1:1} → min 1.
	g.AddNode("r4", Router)
	if err := g.AddEdge("r1", "r4"); err != nil {
		t.Fatal(err)
	}
	if k := g.MinSameDegreeCount(); k != 1 {
		t.Fatalf("k_d = %d, want 1", k)
	}
}

func TestMinSameDegreeCountEmpty(t *testing.T) {
	if k := New().MinSameDegreeCount(); k != 0 {
		t.Fatalf("empty graph k_d = %d", k)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	g := triangle(t)
	if cc := g.ClusteringCoefficient(); cc != 1.0 {
		t.Fatalf("triangle CC = %v, want 1", cc)
	}
	// A path r1-r2-r3 has CC 0.
	p := New()
	for _, r := range []string{"a", "b", "c"} {
		p.AddNode(r, Router)
	}
	_ = p.AddEdge("a", "b")
	_ = p.AddEdge("b", "c")
	if cc := p.ClusteringCoefficient(); cc != 0 {
		t.Fatalf("path CC = %v, want 0", cc)
	}
}

func TestConnected(t *testing.T) {
	g := triangle(t)
	if !g.Connected() {
		t.Fatal("triangle should be connected")
	}
	g.AddNode("island", Router)
	if g.Connected() {
		t.Fatal("isolated router should break connectivity")
	}
	if !New().Connected() {
		t.Fatal("empty graph is connected by convention")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := triangle(t)
	c := g.Clone()
	c.AddNode("r9", Router)
	_ = c.AddEdge("r9", "r1")
	if g.HasNode("r9") || g.HasEdge("r9", "r1") {
		t.Fatal("clone mutation leaked into original")
	}
	if g.NumEdges() != 4 {
		t.Fatalf("original edges changed: %d", g.NumEdges())
	}
}

func TestRouterSubgraph(t *testing.T) {
	g := triangle(t)
	s := g.RouterSubgraph()
	if s.HasNode("h1") {
		t.Fatal("host leaked into router subgraph")
	}
	if s.NumEdges() != 3 {
		t.Fatalf("router subgraph edges = %d, want 3", s.NumEdges())
	}
}

func TestSupergraph(t *testing.T) {
	g := New()
	for _, r := range []string{"a1", "a2", "b1", "b2"} {
		g.AddNode(r, Router)
	}
	_ = g.AddEdge("a1", "a2")
	_ = g.AddEdge("b1", "b2")
	_ = g.AddEdge("a2", "b1")
	sg := g.Supergraph(map[string]string{"a1": "AS1", "a2": "AS1", "b1": "AS2", "b2": "AS2"})
	if sg.NumNodes() != 2 || sg.NumEdges() != 1 || !sg.HasEdge("AS1", "AS2") {
		t.Fatalf("supergraph wrong: %d nodes %d edges", sg.NumNodes(), sg.NumEdges())
	}
}

func TestDiffEdges(t *testing.T) {
	g := triangle(t)
	h := g.Clone()
	h.AddNode("r4", Router)
	_ = h.AddEdge("r4", "r2")
	diff := DiffEdges(g, h)
	if len(diff) != 1 || diff[0] != CanonEdge("r2", "r4") {
		t.Fatalf("DiffEdges = %v", diff)
	}
}

func TestCanonEdge(t *testing.T) {
	if CanonEdge("b", "a") != (Edge{A: "a", B: "b"}) {
		t.Fatal("CanonEdge must sort endpoints")
	}
}

// Property: for any set of edge insertions, NumEdges equals half the sum of
// neighbor-set sizes and every edge is symmetric.
func TestEdgeSymmetryProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		g := New()
		names := []string{"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"}
		for _, n := range names {
			g.AddNode(n, Router)
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			a := names[int(pairs[i])%len(names)]
			b := names[int(pairs[i+1])%len(names)]
			if a != b {
				_ = g.AddEdge(a, b)
			}
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.B, e.A) {
				return false
			}
		}
		return len(g.Edges()) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: clustering coefficient is always within [0,1].
func TestClusteringCoefficientBounds(t *testing.T) {
	f := func(pairs []uint8) bool {
		g := New()
		names := []string{"n0", "n1", "n2", "n3", "n4", "n5"}
		for _, n := range names {
			g.AddNode(n, Router)
		}
		for i := 0; i+1 < len(pairs); i += 2 {
			a := names[int(pairs[i])%len(names)]
			b := names[int(pairs[i+1])%len(names)]
			if a != b {
				_ = g.AddEdge(a, b)
			}
		}
		cc := g.ClusteringCoefficient()
		return cc >= 0 && cc <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
