// Package version derives a human-readable build version string from the
// Go build metadata embedded in the binary, shared by every command's
// -version flag.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// String returns "<module version> (<vcs revision>, <go version>)" as far
// as the build info embedded by the toolchain allows; "devel" stands in
// when a part is unknown (e.g. `go run` builds carry no VCS stamp).
func String() string {
	ver, rev := "devel", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			ver = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				rev = s.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
			}
		}
	}
	if rev == "" {
		return fmt.Sprintf("%s (%s)", ver, runtime.Version())
	}
	return fmt.Sprintf("%s (%s, %s)", ver, rev, runtime.Version())
}
