package confmask

import (
	"testing"
)

// TestParallelismByteIdentical runs the full pipeline sequentially and
// with a parallel worker pool over every built-in evaluation network at a
// fixed seed and requires the rendered configurations to match byte for
// byte. This is the determinism contract of Options.Parallelism: the
// engine only fans out independent per-router work, merged in a fixed
// order, so the knob trades wall clock for CPU and nothing else.
func TestParallelismByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog pipeline comparison")
	}
	for _, name := range ExampleNetworks() {
		name := name
		t.Run(name, func(t *testing.T) {
			configs := exampleConfigs(t, name)
			seq := DefaultOptions()
			seq.Seed = 7
			seq.Parallelism = 1
			seqOut, _, err := Anonymize(configs, seq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par := seq
			par.Parallelism = 4
			parOut, _, err := Anonymize(configs, par)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if len(seqOut) != len(parOut) {
				t.Fatalf("device counts differ: %d vs %d", len(seqOut), len(parOut))
			}
			for dev, want := range seqOut {
				got, ok := parOut[dev]
				if !ok {
					t.Fatalf("device %s missing from parallel output", dev)
				}
				if got != want {
					t.Fatalf("device %s differs between sequential and parallel runs", dev)
				}
			}
		})
	}
}
