package confmask

import (
	"strings"
	"testing"
)

// TestJunosEndToEnd anonymizes a network captured in Junos syntax: the
// pipeline must auto-detect the syntax, preserve the data plane, and emit
// Junos again.
func TestJunosEndToEnd(t *testing.T) {
	ios := exampleConfigs(t, "FatTree04")
	opts := DefaultOptions()
	opts.Seed = 4
	opts.OutputSyntax = "junos"

	// Convert the generated network to Junos first.
	junosIn, _, err := Anonymize(ios, Options{KR: 1, KH: 1, Seed: 1, OutputSyntax: "junos"})
	if err != nil {
		t.Fatalf("identity conversion: %v", err)
	}
	for _, text := range junosIn {
		if !strings.HasPrefix(strings.TrimSpace(text), "set ") {
			t.Fatal("conversion did not emit Junos syntax")
		}
		break
	}
	// The conversion alone must already be functionally equivalent.
	if err := Verify(ios, junosIn); err != nil {
		t.Fatalf("cross-syntax conversion broke the data plane: %v", err)
	}

	// Now anonymize the Junos capture.
	anon, rep, err := Anonymize(junosIn, opts)
	if err != nil {
		t.Fatalf("Anonymize(junos): %v", err)
	}
	if err := Verify(junosIn, anon); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(rep.FakeHosts) == 0 {
		t.Fatal("no fake hosts added")
	}
	info, err := Inspect(anon)
	if err != nil {
		t.Fatal(err)
	}
	if info.MinSameDegree < opts.KR {
		t.Fatalf("k_d = %d", info.MinSameDegree)
	}
}

// TestSyntaxConversionBothWays round-trips IOS → Junos → IOS through the
// public API and checks equivalence at each step.
func TestSyntaxConversionBothWays(t *testing.T) {
	ios := exampleConfigs(t, "Backbone")
	identity := Options{KR: 1, KH: 1, Seed: 1}

	identity.OutputSyntax = "junos"
	junos, _, err := Anonymize(ios, identity)
	if err != nil {
		t.Fatal(err)
	}
	identity.OutputSyntax = "ios"
	back, _, err := Anonymize(junos, identity)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(ios, back); err != nil {
		t.Fatalf("IOS→Junos→IOS changed forwarding: %v", err)
	}
	for _, text := range back {
		if !strings.Contains(text, "hostname ") {
			t.Fatal("result is not IOS syntax")
		}
		break
	}
}
